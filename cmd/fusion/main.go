// Command fusion analyzes a program in the analysis language with a chosen
// checker and engine, printing the verified bug reports.
//
// Usage:
//
//	fusion [-checker null-deref|cwe-23|cwe-402|cwe-369|cwe-125|all] [-engine NAME]
//	       [-absint on|nostride|nosimplify|intervals|off] [-session on|off]
//	       [-workers N] [-timeout D] [-no-prelude]
//	       [-fail-fast] [-budget-steps N] [-budget-conflicts N]
//	       [-budget-deadline D] [-budget-heap N]
//	       [-retries N] [-watchdog-grace D]
//	       [-metrics FILE] [-trace FILE] [-pprof-addr ADDR] file.fl
//
// Engines: fusion (default), fusion-unopt, pinpoint, pinpoint+qe,
// pinpoint+lfs, pinpoint+hfs, pinpoint+ar, infer.
//
// Exit status: 0 = analysis completed with no findings; 1 = analysis
// completed and reported findings; 2 = the run was impaired — a unit
// failed (contained crash), a verdict degraded to a cheaper tier, or the
// input could not be analyzed at all.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"fusion/internal/checker"
	"fusion/internal/driver"
	"fusion/internal/engines"
	"fusion/internal/failure"
	"fusion/internal/faultinject"
	"fusion/internal/fusioncore"
	"fusion/internal/sat"
	"fusion/internal/sparse"
	"fusion/internal/telemetry"
)

func main() {
	checkerName := flag.String("checker", "all", "checker to run: null-deref, cwe-23, cwe-402, cwe-369, cwe-125, or all")
	engineName := flag.String("engine", "fusion", "engine: fusion, fusion-unopt, pinpoint[+qe|+lfs|+hfs|+ar], infer")
	noPrelude := flag.Bool("no-prelude", false, "do not prepend the standard extern declarations")
	showPaths := flag.Bool("paths", false, "print the data-dependence path of each report")
	joint := flag.Bool("joint", false, "additionally check the joint feasibility of multi-argument sinks")
	enum := flag.String("enum", "dfs", "path enumeration: dfs or summary")
	dot := flag.Bool("dot", false, "print the program dependence graph in Graphviz DOT format and exit")
	absintMode := flag.String("absint", "on", "abstract-interpretation tier: on (intervals × stride + zone), nostride (congruence disabled), nosimplify (formula pre-simplification disabled), intervals (zone and stride disabled), or off (fusion engines and -dot annotations)")
	session := flag.String("session", "on", "warm incremental solver sessions: on (per-worker sessions reuse learned clauses and term encodings across a unit's queries) or off (every query solves one-shot — the oracle). Never changes verdicts, only cost")
	workers := flag.Int("workers", 1, "worker count for enumeration and checking (output is identical for any count)")
	timeout := flag.Duration("timeout", 0, "overall analysis budget; on expiry remaining candidates are reported as undecided (0 = none)")
	failFast := flag.Bool("fail-fast", false, "stop at the first contained unit failure instead of completing the batch")
	budgetSteps := flag.Int64("budget-steps", 0, "per-candidate SAT decision budget; on exhaustion the verdict degrades to the zone/interval tiers (0 = unbounded)")
	budgetConflicts := flag.Int64("budget-conflicts", 0, "per-candidate SAT conflict budget (0 = unbounded)")
	budgetDeadline := flag.Duration("budget-deadline", 0, "per-candidate wall-clock budget (0 = none)")
	budgetHeap := flag.Int64("budget-heap", 0, "per-candidate formula-construction byte budget (0 = unbounded)")
	retries := flag.Int("retries", 0, "re-run a candidate whose attempt crashed or was abandoned up to N times, escalating from the warm session to a fresh cold session to a one-shot solve (0 = single attempt)")
	watchdogGrace := flag.Duration("watchdog-grace", 0, "hard-abandon a candidate whose solver heartbeat stays flat this long at or past its deadline (0 = watchdog off)")
	metrics := flag.String("metrics", "", "write a stable-ordered JSON metrics snapshot (counters, sched, wall_ns) to this file")
	trace := flag.String("trace", "", "write a Chrome trace-event JSON file (load in Perfetto or chrome://tracing) to this file")
	pprofAddr := flag.String("pprof-addr", "", "serve net/http/pprof on this address (e.g. localhost:6060) for live profiling")
	flag.Parse()
	if err := faultinject.ArmFromEnv(); err != nil {
		fmt.Fprintln(os.Stderr, "fusion:", err)
		os.Exit(2)
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: fusion [flags] file.fl")
		flag.Usage()
		os.Exit(2)
	}
	mode, err := driver.ParseAbsintMode(*absintMode)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fusion:", err)
		os.Exit(2)
	}
	if *session != "on" && *session != "off" {
		fmt.Fprintf(os.Stderr, "fusion: -session must be on or off, got %q\n", *session)
		os.Exit(2)
	}
	cfg := config{
		path: flag.Arg(0), checker: *checkerName, engine: *engineName,
		prelude: !*noPrelude, showPaths: *showPaths, joint: *joint,
		enum: *enum, dot: *dot, absint: mode,
		noSession: *session == "off",
		workers:   *workers, timeout: *timeout,
		failFast: *failFast,
		retries:  *retries, watchdogGrace: *watchdogGrace,
		budget: engines.Budget{
			Steps: *budgetSteps, Conflicts: *budgetConflicts,
			Deadline: *budgetDeadline, MaxHeapDelta: *budgetHeap,
		},
		out: os.Stdout,
	}
	if *metrics != "" || *trace != "" {
		cfg.rec = telemetry.New()
	}
	if *pprofAddr != "" {
		if err := telemetry.EnablePprof(*pprofAddr); err != nil {
			fmt.Fprintln(os.Stderr, "fusion:", err)
			os.Exit(2)
		}
	}
	if *metrics != "" || *trace != "" || *pprofAddr != "" {
		// SIGUSR1 dumps heap and goroutine profiles whenever any
		// observability surface is requested.
		telemetry.DumpOnSignal("")
	}
	res, err := run(cfg)
	// The artifacts are written even for an impaired run: a crash's
	// partial trace is exactly what one wants to look at.
	writeTelemetry(cfg.rec, *metrics, *trace)
	if err != nil {
		var se *driver.SemaErrors
		if errors.As(err, &se) {
			for _, e := range se.Errs {
				fmt.Fprintln(os.Stderr, e)
			}
		}
		fmt.Fprintln(os.Stderr, "fusion:", err)
		os.Exit(2)
	}
	os.Exit(res.exitCode())
}

// writeTelemetry writes the -metrics and -trace artifacts; a write
// failure is reported but never changes the analysis exit status.
func writeTelemetry(rec *telemetry.Recorder, metrics, trace string) {
	if rec == nil {
		return
	}
	if metrics != "" {
		if err := rec.WriteMetrics(metrics); err != nil {
			fmt.Fprintln(os.Stderr, "fusion:", err)
		}
	}
	if trace != "" {
		if err := rec.WriteTrace(trace); err != nil {
			fmt.Fprintln(os.Stderr, "fusion:", err)
		}
	}
}

type config struct {
	path          string
	checker       string
	engine        string
	prelude       bool
	showPaths     bool
	joint         bool
	enum          string
	dot           bool
	absint        driver.AbsintMode
	noSession     bool
	workers       int
	timeout       time.Duration
	failFast      bool
	retries       int
	watchdogGrace time.Duration
	budget        engines.Budget
	rec           *telemetry.Recorder
	out           interface{ Write([]byte) (int, error) }
}

// outcome is what a completed (even impaired) run reports.
type outcome struct {
	findings  int
	degraded  int
	abandoned int
	recovered int
	failures  []*failure.UnitFailure
}

// exitCode maps the run outcome to the documented exit status: impaired
// runs trump findings, findings trump a clean pass. A candidate the
// retry ladder recovered is not an impairment; one the watchdog
// abandoned for good is.
func (o outcome) exitCode() int {
	switch {
	case len(o.failures) > 0 || o.degraded > 0 || o.abandoned > 0:
		return 2
	case o.findings > 0:
		return 1
	default:
		return 0
	}
}

func newEngine(name string) (engines.Engine, error) {
	switch name {
	case "fusion":
		return engines.NewFusion(), nil
	case "fusion-unopt":
		e := engines.NewFusion()
		e.Opts = fusioncore.Options{Unoptimized: true}
		return e, nil
	case "pinpoint":
		return engines.NewPinpoint(engines.Plain), nil
	case "pinpoint+qe":
		return engines.NewPinpoint(engines.QE), nil
	case "pinpoint+lfs":
		return engines.NewPinpoint(engines.LFS), nil
	case "pinpoint+hfs":
		return engines.NewPinpoint(engines.HFS), nil
	case "pinpoint+ar":
		return engines.NewPinpoint(engines.AR), nil
	case "infer":
		return engines.NewInfer(), nil
	default:
		return nil, fmt.Errorf("unknown engine %q", name)
	}
}

func run(cfg config) (outcome, error) {
	var res outcome
	ctx := context.Background()
	if cfg.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.timeout)
		defer cancel()
	}
	data, err := os.ReadFile(cfg.path)
	if err != nil {
		return res, err
	}
	prog, err := driver.Compile(ctx, driver.Source{Name: cfg.path, Text: string(data)},
		driver.Options{Prelude: cfg.prelude, Absint: cfg.absint, Telemetry: cfg.rec})
	if err != nil {
		return res, err
	}
	g := prog.Graph
	if cfg.dot {
		fmt.Fprint(cfg.out, prog.DOT())
		return res, nil
	}

	var specs []*sparse.Spec
	if cfg.checker == "all" {
		specs = checker.All()
	} else {
		spec, err := checker.ByName(cfg.checker)
		if err != nil {
			return res, err
		}
		specs = []*sparse.Spec{spec}
	}
	eng, err := newEngine(cfg.engine)
	if err != nil {
		return res, err
	}
	engines.SetParallel(eng, cfg.workers)
	engines.SetBudget(eng, cfg.budget)
	engines.SetNoSession(eng, cfg.noSession)
	engines.SetSupervision(eng, cfg.retries, cfg.watchdogGrace)
	if cfg.rec != nil {
		engines.SetTelemetry(eng, cfg.rec)
	}
	// The abstract tier applies to the fused engine: it refutes queries
	// before any formula is built, and its invariants prune provably-safe
	// candidates during DFS enumeration. The analysis is computed once on
	// the compiled program and shared between pruning and refutation.
	useAbsint := false
	if f, ok := eng.(*engines.Fusion); ok && cfg.absint != driver.AbsintOff {
		f.Opts.Absint = prog.Absint()
		f.NoSimplify = cfg.absint == driver.AbsintNoSimplify
		useAbsint = true
	}

	pruned := 0
	enumerate := func(spec *sparse.Spec) ([]sparse.Candidate, error) {
		switch cfg.enum {
		case "", "dfs":
			e := sparse.NewEngine(g)
			e.Workers = cfg.workers
			if useAbsint {
				e.Oracle = prog.Oracle()
			}
			cands := e.RunContext(ctx, spec)
			pruned += e.Pruned
			res.failures = append(res.failures, e.Failures...)
			return cands, nil
		case "summary":
			return sparse.NewSummaryEngine(g).RunContext(ctx, spec), nil
		default:
			return nil, fmt.Errorf("unknown enumeration %q", cfg.enum)
		}
	}

	decided, byStride, byZone, simplified := 0, 0, 0, 0
specs:
	for _, spec := range specs {
		cands, err := enumerate(spec)
		if err != nil {
			return res, err
		}
		verdicts := eng.Check(ctx, g, cands)
		engines.SortVerdicts(verdicts)
		for _, v := range verdicts {
			if v.DecidedByAbsint {
				decided++
			}
			if v.DecidedByStride {
				byStride++
			}
			if v.DecidedByZone {
				byZone++
			}
			simplified += v.Simplified
			if v.Attempts > 1 && v.Failure == nil && !v.Abandoned {
				res.recovered++
			}
			if v.Failure != nil {
				res.failures = append(res.failures, v.Failure)
				continue
			}
			if v.Abandoned {
				res.abandoned++
				fmt.Fprintf(cfg.out, "[%s] abandoned by watchdog after %d attempt(s) (heartbeat stalled past deadline): %s\n",
					spec.Name, v.Attempts, v.Cand.Path)
				if v.Status != sat.Unsat {
					continue
				}
			}
			if v.Degraded {
				res.degraded++
			}
			switch v.Status {
			case sat.Sat:
				res.findings++
				fmt.Fprintln(cfg.out, checker.Describe(v.Cand))
				if cfg.showPaths {
					fmt.Fprintf(cfg.out, "    path: %s\n", v.Cand.Path)
				}
			case sat.Unsat:
				if v.Degraded {
					fmt.Fprintf(cfg.out, "[%s] refuted at degraded %s tier after budget exhaustion: %s\n",
						spec.Name, v.Tier, v.Cand.Path)
				}
			case sat.Unknown:
				note := ""
				if v.Degraded {
					note = " (budget exhausted; degraded tiers could not refute)"
				}
				fmt.Fprintf(cfg.out, "[%s] undecided within budget%s: %s\n", spec.Name, note, v.Cand.Path)
			}
		}
		if cfg.failFast && len(res.failures) > 0 {
			fmt.Fprintf(cfg.out, "fail-fast: stopping after %d unit failure(s)\n", len(res.failures))
			break specs
		}
		if cfg.joint {
			jc, ok := eng.(engines.JointChecker)
			if !ok {
				return res, fmt.Errorf("engine %s does not support joint checking", eng.Name())
			}
			for _, jv := range engines.CheckJoint(ctx, jc, g, cands) {
				verdict := "jointly infeasible"
				if jv.Status == sat.Sat {
					verdict = "JOINT BUG: all arguments taintable together"
				}
				fmt.Fprintf(cfg.out, "[%s] sink %s.%s with %d tracked arguments: %s\n",
					spec.Name, jv.Group.Sink.Fn.Name, jv.Group.Sink.Callee,
					len(jv.Group.Flows), verdict)
			}
		}
	}
	if f := prog.AbsintFailure(); f != nil {
		res.failures = append(res.failures, f)
	}
	if useAbsint {
		fmt.Fprintf(cfg.out, "absint: refuted %d quer(ies) (%d by stride, %d by zone), pruned %d candidate(s), simplified %d vertex(es)\n", decided, byStride, byZone, pruned, simplified)
	}
	printFailures(cfg.out, res.failures)
	if res.recovered > 0 {
		fmt.Fprintf(cfg.out, "%d candidate(s) recovered by the retry ladder\n", res.recovered)
	}
	if res.abandoned > 0 {
		fmt.Fprintf(cfg.out, "%d candidate(s) abandoned by the watchdog\n", res.abandoned)
	}
	if res.degraded > 0 {
		fmt.Fprintf(cfg.out, "%d verdict(s) degraded after budget exhaustion\n", res.degraded)
	}
	fmt.Fprintf(cfg.out, "%d bug(s) reported by %s\n", res.findings, eng.Name())
	return res, nil
}

// printFailures renders the per-unit failure summary table: which unit
// crashed, at which pipeline stage, and a stable digest of the sanitized
// stack for cross-run correlation.
func printFailures(out interface{ Write([]byte) (int, error) }, fails []*failure.UnitFailure) {
	if len(fails) == 0 {
		return
	}
	uw, sw := len("unit"), len("stage")
	for _, f := range fails {
		if len(f.Unit) > uw {
			uw = len(f.Unit)
		}
		if len(f.Stage) > sw {
			sw = len(f.Stage)
		}
	}
	fmt.Fprintf(out, "%d unit failure(s):\n", len(fails))
	fmt.Fprintf(out, "  %-*s  %-*s  %-8s  %-8s  %s\n", uw, "unit", sw, "stage", "digest", "attempts", "error")
	for _, f := range fails {
		attempts := f.Attempts
		if attempts == 0 {
			attempts = 1
		}
		fmt.Fprintf(out, "  %-*s  %-*s  %-8s  %-8d  %v\n", uw, f.Unit, sw, f.Stage, f.Digest(), attempts, f.Value)
	}
}
