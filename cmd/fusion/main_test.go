package main

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"fusion/internal/driver"
	"fusion/internal/engines"
	"fusion/internal/failure"
	"fusion/internal/faultinject"
)

func writeTemp(t *testing.T, src string) string {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "prog.fl")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const testSrc = `
fun f(a: int) {
    var p: ptr = null;
    if (a > 3) {
        deref(p);
    }
    var q: ptr = null;
    if (a > 0) {
        if (a < 0) {
            deref(q);
        }
    }
}
`

func TestRunReportsFeasibleOnly(t *testing.T) {
	path := writeTemp(t, testSrc)
	for _, engine := range []string{"fusion", "pinpoint", "fusion-unopt", "pinpoint+lfs"} {
		var out bytes.Buffer
		_, err := run(config{path: path, checker: "null-deref", engine: engine, prelude: true, out: &out})
		if err != nil {
			t.Fatalf("%s: %v", engine, err)
		}
		s := out.String()
		if !strings.Contains(s, "1 bug(s) reported") {
			t.Errorf("%s: expected exactly one report:\n%s", engine, s)
		}
	}
}

func TestRunAllCheckers(t *testing.T) {
	path := writeTemp(t, `
fun f(a: int) {
    var s: int = read_secret();
    if (a == 3) {
        send(s);
    }
}`)
	var out bytes.Buffer
	if _, err := run(config{path: path, checker: "all", engine: "fusion", prelude: true, showPaths: true, out: &out}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "cwe-402") || !strings.Contains(out.String(), "path:") {
		t.Errorf("unexpected output:\n%s", out.String())
	}
}

func TestRunJoint(t *testing.T) {
	path := writeTemp(t, `
fun f(a: int) {
    var s1: int = read_secret();
    var s2: int = read_secret();
    var c: int = 0;
    var d: int = 0;
    if (a > 0) {
        c = s1;
    }
    if (a < 0) {
        d = s2;
    }
    sendmsg(c, d);
}`)
	var out bytes.Buffer
	if _, err := run(config{path: path, checker: "cwe-402", engine: "fusion", prelude: true, joint: true, out: &out}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "jointly infeasible") {
		t.Errorf("expected joint infeasibility:\n%s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	path := writeTemp(t, testSrc)
	if _, err := run(config{path: path, checker: "bogus", engine: "fusion", prelude: true, out: &bytes.Buffer{}}); err == nil {
		t.Error("expected unknown-checker error")
	}
	if _, err := run(config{path: path, checker: "null-deref", engine: "bogus", prelude: true, out: &bytes.Buffer{}}); err == nil {
		t.Error("expected unknown-engine error")
	}
	if _, err := run(config{path: "/does/not/exist", checker: "all", engine: "fusion", prelude: true, out: &bytes.Buffer{}}); err == nil {
		t.Error("expected file error")
	}
	bad := writeTemp(t, "fun f( {")
	if _, err := run(config{path: bad, checker: "all", engine: "fusion", prelude: true, out: &bytes.Buffer{}}); err == nil {
		t.Error("expected parse error")
	}
	semabad := writeTemp(t, "fun f() { x = 1; }")
	if _, err := run(config{path: semabad, checker: "all", engine: "fusion", prelude: true, out: &bytes.Buffer{}}); err == nil {
		t.Error("expected sema error")
	}
}

func TestEngineFactory(t *testing.T) {
	for _, name := range []string{"fusion", "fusion-unopt", "pinpoint", "pinpoint+qe", "pinpoint+lfs", "pinpoint+hfs", "pinpoint+ar", "infer"} {
		if _, err := newEngine(name); err != nil {
			t.Errorf("engine %s: %v", name, err)
		}
	}
	if _, err := newEngine("nope"); err == nil {
		t.Error("expected error for unknown engine")
	}
}

func TestRunDOT(t *testing.T) {
	path := writeTemp(t, testSrc)
	var out bytes.Buffer
	if _, err := run(config{path: path, checker: "all", engine: "fusion", prelude: true, dot: true, out: &out}); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.HasPrefix(s, "digraph pdg {") || !strings.Contains(s, "style=dashed") {
		t.Errorf("unexpected DOT output:\n%.200s", s)
	}
}

func TestRunSummaryEnumeration(t *testing.T) {
	path := writeTemp(t, testSrc)
	var dfs, sum bytes.Buffer
	// The abstract tier prunes during DFS but not during summary
	// enumeration, so compare the two with the tier off.
	if _, err := run(config{path: path, checker: "null-deref", engine: "fusion", prelude: true, enum: "dfs", absint: driver.AbsintOff, out: &dfs}); err != nil {
		t.Fatal(err)
	}
	if _, err := run(config{path: path, checker: "null-deref", engine: "fusion", prelude: true, enum: "summary", absint: driver.AbsintOff, out: &sum}); err != nil {
		t.Fatal(err)
	}
	if dfs.String() != sum.String() {
		t.Errorf("enumerations disagree:\n--- dfs ---\n%s--- summary ---\n%s", dfs.String(), sum.String())
	}
	if _, err := run(config{path: path, checker: "null-deref", engine: "fusion", prelude: true, enum: "bogus", out: &sum}); err == nil {
		t.Error("expected error for unknown enumeration")
	}
}

// TestRunWorkersDeterministic checks the CLI promise that -workers N
// output is byte-identical to the sequential run, across engines.
func TestRunWorkersDeterministic(t *testing.T) {
	path := writeTemp(t, testSrc)
	for _, engine := range []string{"fusion", "pinpoint", "infer"} {
		var seq, par bytes.Buffer
		if _, err := run(config{path: path, checker: "all", engine: engine, prelude: true, showPaths: true, workers: 1, out: &seq}); err != nil {
			t.Fatalf("%s workers=1: %v", engine, err)
		}
		if _, err := run(config{path: path, checker: "all", engine: engine, prelude: true, showPaths: true, workers: 8, out: &par}); err != nil {
			t.Fatalf("%s workers=8: %v", engine, err)
		}
		if seq.String() != par.String() {
			t.Errorf("%s: workers=1 and workers=8 outputs differ:\n--- 1 ---\n%s--- 8 ---\n%s", engine, seq.String(), par.String())
		}
	}
}

// TestRunSessionDeterministic checks the -session contract end to end: the
// warm sessions may only change the cost of a run, so the CLI output must
// be byte-identical with sessions on and off, at any worker count — and
// under an injected check-stage panic, where a poisoned session must not
// leak into the remaining candidates' verdicts.
func TestRunSessionDeterministic(t *testing.T) {
	path := writeTemp(t, testSrc)
	for _, engine := range []string{"fusion", "pinpoint", "pinpoint+hfs"} {
		var outs []string
		for _, noSession := range []bool{false, true} {
			for _, workers := range []int{1, 8} {
				var buf bytes.Buffer
				if _, err := run(config{path: path, checker: "all", engine: engine, prelude: true,
					showPaths: true, noSession: noSession, workers: workers, out: &buf}); err != nil {
					t.Fatalf("%s session=%v workers=%d: %v", engine, !noSession, workers, err)
				}
				outs = append(outs, buf.String())
			}
		}
		for _, o := range outs[1:] {
			if o != outs[0] {
				t.Errorf("%s: output varies with -session/-workers:\n--- base ---\n%s--- got ---\n%s",
					engine, outs[0], o)
			}
		}
	}

	// Under FUSION_FAULT=panic.check (here scoped to the null-deref units)
	// the batch still completes, and the warm and cold runs agree on every
	// surviving verdict — a panic poisons its own session, nothing else.
	if err := faultinject.ArmSpec("panic.check:null-deref"); err != nil {
		t.Fatal(err)
	}
	defer faultinject.Reset()
	var warm, cold bytes.Buffer
	if _, err := run(config{path: path, checker: "all", engine: "fusion", prelude: true, workers: 1, out: &warm}); err != nil {
		t.Fatal(err)
	}
	if _, err := run(config{path: path, checker: "all", engine: "fusion", prelude: true, noSession: true, workers: 1, out: &cold}); err != nil {
		t.Fatal(err)
	}
	if warm.String() != cold.String() {
		t.Errorf("faulted outputs differ between session modes:\n--- warm ---\n%s--- cold ---\n%s",
			warm.String(), cold.String())
	}
}

// strideSrc has a parity-infeasible division that only the congruence
// tier can refute: the divisor e is defined before the guard, so the
// whole-program oracle records no stride for it, and the interval tier
// cannot evaluate the guard to a contradiction (two unknowns). Only the
// refuter's backward %-refinement derives e ≡ 1 (mod 2) and kills zero.
const strideSrc = `
fun f(a: int) {
    var d: int = user_input();
    var n: int = user_input();
    var e: int = d + n * 2;
    if (d % 2 == 1) {
        var q: int = 100 / e;
        send(q + a);
    }
}
`

// TestRunStrideDeterministic checks that stride-tier refutations are
// attributed in the CLI summary and that the output is byte-identical
// across worker counts; with -absint=nostride the attribution vanishes
// but the report set stays the same.
func TestRunStrideDeterministic(t *testing.T) {
	path := writeTemp(t, strideSrc)
	var seq, par, nostride bytes.Buffer
	if _, err := run(config{path: path, checker: "cwe-369", engine: "fusion", prelude: true, workers: 1, out: &seq}); err != nil {
		t.Fatalf("workers=1: %v", err)
	}
	if _, err := run(config{path: path, checker: "cwe-369", engine: "fusion", prelude: true, workers: 8, out: &par}); err != nil {
		t.Fatalf("workers=8: %v", err)
	}
	if seq.String() != par.String() {
		t.Errorf("workers=1 and workers=8 outputs differ:\n--- 1 ---\n%s--- 8 ---\n%s", seq.String(), par.String())
	}
	s := seq.String()
	if !strings.Contains(s, "by stride") || strings.Contains(s, "(0 by stride") {
		t.Errorf("no stride-tier attribution in summary:\n%s", s)
	}
	if !strings.Contains(s, "0 bug(s) reported") {
		t.Errorf("parity-infeasible division must not be reported:\n%s", s)
	}
	if _, err := run(config{path: path, checker: "cwe-369", engine: "fusion", prelude: true, absint: driver.AbsintNoStride, out: &nostride}); err != nil {
		t.Fatalf("nostride: %v", err)
	}
	ns := nostride.String()
	if strings.Contains(ns, "by stride") && !strings.Contains(ns, "(0 by stride") {
		t.Errorf("nostride mode attributed a stride refutation:\n%s", ns)
	}
	if !strings.Contains(ns, "0 bug(s) reported") {
		t.Errorf("report set changed under nostride (solver must still refute):\n%s", ns)
	}
}

// TestRunTimeout checks that an already-expired budget still returns
// promptly with an error rather than hanging.
func TestRunTimeout(t *testing.T) {
	path := writeTemp(t, testSrc)
	_, err := run(config{path: path, checker: "all", engine: "fusion", prelude: true, timeout: time.Nanosecond, out: &bytes.Buffer{}})
	if err == nil {
		t.Fatal("expected a deadline error from an expired budget")
	}
}

func TestOutcomeExitCodes(t *testing.T) {
	cases := []struct {
		o    outcome
		want int
	}{
		{outcome{}, 0},
		{outcome{findings: 3}, 1},
		{outcome{degraded: 1}, 2},
		{outcome{failures: []*failure.UnitFailure{{Unit: "u"}}}, 2},
		{outcome{findings: 5, degraded: 1}, 2}, // impairment trumps findings
		{outcome{findings: 5, failures: []*failure.UnitFailure{{Unit: "u"}}}, 2},
	}
	for _, c := range cases {
		if got := c.o.exitCode(); got != c.want {
			t.Errorf("%+v: exit %d, want %d", c.o, got, c.want)
		}
	}
}

// TestRunInjectedFailureSummary arms a forced check-stage panic and checks
// the CLI completes the batch, renders the failure summary table, and maps
// the outcome to exit 2 — identically at workers 1 and 8.
func TestRunInjectedFailureSummary(t *testing.T) {
	path := writeTemp(t, testSrc)
	if err := faultinject.ArmSpec("panic.check:null-deref"); err != nil {
		t.Fatal(err)
	}
	defer faultinject.Reset()
	var seq, par bytes.Buffer
	res, err := run(config{path: path, checker: "all", engine: "fusion", prelude: true, workers: 1, out: &seq})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.failures) == 0 || res.exitCode() != 2 {
		t.Fatalf("armed panic not surfaced: %+v", res)
	}
	s := seq.String()
	for _, want := range []string{"unit failure(s):", "unit", "stage", "digest", "error", "injected fault panic.check"} {
		if !strings.Contains(s, want) {
			t.Errorf("failure summary missing %q:\n%s", want, s)
		}
	}
	// Other checkers' verdicts survive the crashed units.
	if !strings.Contains(s, "bug(s) reported") {
		t.Errorf("batch did not complete:\n%s", s)
	}
	if _, err := run(config{path: path, checker: "all", engine: "fusion", prelude: true, workers: 8, out: &par}); err != nil {
		t.Fatal(err)
	}
	if seq.String() != par.String() {
		t.Errorf("workers=1 and workers=8 outputs differ under injection:\n--- 1 ---\n%s--- 8 ---\n%s", seq.String(), par.String())
	}
}

// TestRunFailFast stops after the first spec with a contained failure
// instead of checking the remaining specs.
func TestRunFailFast(t *testing.T) {
	path := writeTemp(t, testSrc)
	if err := faultinject.ArmSpec("panic.check:null-deref"); err != nil {
		t.Fatal(err)
	}
	defer faultinject.Reset()
	var out bytes.Buffer
	res, err := run(config{path: path, checker: "all", engine: "fusion", prelude: true, failFast: true, out: &out})
	if err != nil {
		t.Fatal(err)
	}
	if res.exitCode() != 2 {
		t.Fatalf("fail-fast run must be impaired: %+v", res)
	}
	if !strings.Contains(out.String(), "fail-fast: stopping after") {
		t.Errorf("missing fail-fast notice:\n%s", out.String())
	}
}

// TestRunBudgetDegradation drives the CLI budget flags: a one-step SAT
// budget exhausts the bit-precise tier and the output reports the
// degraded-tier refutation and exit code 2.
func TestRunBudgetDegradation(t *testing.T) {
	path := writeTemp(t, `
fun f(a: int) {
    var p: ptr = null;
    if (a * a == 1442401) {
        deref(p);
    }
}
`)
	var out bytes.Buffer
	res, err := run(config{
		path: path, checker: "null-deref", engine: "fusion", prelude: true,
		absint: driver.AbsintOff, budget: engines.Budget{Steps: 1}, out: &out,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.degraded == 0 || res.exitCode() != 2 {
		t.Fatalf("one-step budget did not degrade: %+v\n%s", res, out.String())
	}
	if len(res.failures) != 0 {
		t.Fatalf("degradation must not be a unit failure: %+v", res.failures)
	}
	s := out.String()
	if !strings.Contains(s, "budget exhausted") && !strings.Contains(s, "budget exhaustion") {
		t.Errorf("output does not mention the exhausted budget:\n%s", s)
	}
	if !strings.Contains(s, "verdict(s) degraded after budget exhaustion") {
		t.Errorf("missing degradation summary:\n%s", s)
	}
}

// TestRunCompileStageInjection arms a front-end stage panic: the compile
// fails as a contained error naming the stage rather than crashing the
// process.
func TestRunCompileStageInjection(t *testing.T) {
	path := writeTemp(t, testSrc)
	if err := faultinject.ArmSpec("panic.sema"); err != nil {
		t.Fatal(err)
	}
	defer faultinject.Reset()
	_, err := run(config{path: path, checker: "all", engine: "fusion", prelude: true, out: &bytes.Buffer{}})
	if err == nil {
		t.Fatal("injected front-end panic must fail the run")
	}
	var f *failure.UnitFailure
	if !errors.As(err, &f) || f.Stage != "sema" {
		t.Errorf("want a sema-stage unit failure, got %v", err)
	}
}
