module fusion

go 1.22
