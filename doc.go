// Package fusion is a from-scratch Go reproduction of "Path-Sensitive
// Sparse Analysis without Path Conditions" (Shi, Yao, Wu, Zhang; PLDI
// 2021): an inter-procedurally path-sensitive sparse static analysis whose
// SMT solver works directly on the program dependence graph instead of on
// explicit path conditions.
//
// The implementation spans the full stack the paper depends on: a small
// imperative language with parser and semantic analysis (internal/lang,
// internal/sema), normalization to loop-free single-exit form
// (internal/unroll), gated-SSA construction with control-dependence
// machinery (internal/ssa), the program dependence graph and slicing
// (internal/pdg), a bit-vector SMT solver with preprocessing passes,
// Tseitin bit-blasting and a CDCL SAT core (internal/smt,
// internal/bitblast, internal/sat, internal/solver), the translation rules
// from graph slices to path conditions (internal/cond), the sparse
// analysis engine and checkers (internal/sparse, internal/checker), the
// fused solver that is the paper's contribution (internal/fusioncore), the
// baseline engines the evaluation compares against (internal/engines), a
// synthetic benchmark generator with ground-truth bug injection
// (internal/progen), and the experiment harness that regenerates every
// table and figure (internal/bench).
//
// See README.md for a tour, DESIGN.md for the system inventory and the
// substitutions made for the paper's unavailable dependencies, and
// EXPERIMENTS.md for paper-versus-measured results.
package fusion
