// Solver: use the bit-vector SMT stack directly as a library — terms,
// preprocessing passes, and the CDCL-backed solve — independent of any
// program analysis. Shows the preprocessing pipeline deciding the paper's
// Figure 1(b) condition without search.
package main

import (
	"fmt"

	"fusion/internal/smt"
	"fusion/internal/solver"
)

func main() {
	b := smt.NewBuilder()

	// A small constraint system: x + y = 100, x < 20 signed, y even.
	x := b.Var("x", 32)
	y := b.Var("y", 32)
	phi := b.And(
		b.Eq(b.Add(x, y), b.Const(100, 32)),
		b.Slt(x, b.Const(20, 32)),
		b.Eq(b.And(y, b.Const(1, 32)), b.Const(0, 32)),
	)
	r := solver.Solve(b, phi, solver.Options{WantModel: true})
	fmt.Println("phi:", phi)
	fmt.Println("status:", r.Status)
	if r.Model != nil {
		fmt.Printf("model: x=%d y=%d (check: %v)\n",
			int32(r.Model[x]), r.Model[y], smt.Eval(phi, r.Model) == 1)
	}

	// The paper's Figure 1(b) path condition: the return-value condition
	// of bar cloned at two call sites, feeding c < d. The preprocessing
	// pipeline (equality propagation, definition inlining, unconstrained
	// elimination) decides it without bit-blasting.
	v := func(n string) *smt.Term { return b.Var(n, 32) }
	two := b.Const(2, 32)
	a, bb, c, d := v("a"), v("b"), v("c"), v("d")
	x1, y1, z1 := v("x1"), v("y1"), v("z1")
	x2, y2, z2 := v("x2"), v("y2"), v("z2")
	e := b.Var("e", 1)
	fig1b := b.And(
		b.Eq(y1, b.Mul(x1, two)), b.Eq(z1, y1),
		b.Eq(a, x1), b.Eq(c, z1),
		b.Eq(y2, b.Mul(x2, two)), b.Eq(z2, y2),
		b.Eq(bb, x2), b.Eq(d, z2),
		e, b.Eq(e, b.Slt(c, d)),
	)
	r2 := solver.Solve(b, fig1b, solver.Options{NoProbe: true})
	fmt.Printf("figure 1(b): %s (decided by preprocessing: %v)\n",
		r2.Status, r2.Preprocessed)

	// An unsatisfiable system: x*2 = 7 has no solution modulo 2^32.
	r3 := solver.Solve(b, b.Eq(b.Mul(x, two), b.Const(7, 32)), solver.Options{})
	fmt.Println("x*2 = 7:", r3.Status)

	fmt.Printf("builder: %d distinct terms, ~%d bytes\n", b.NumTerms(), b.EstimatedBytes())
}
