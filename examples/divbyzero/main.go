// Divbyzero: the CWE-369 extension checker, whose sinks carry a value
// constraint (the divisor must equal zero on the reported path). The
// verdicts are cross-checked dynamically with the reference interpreter:
// reported divisions are driven to an actual zero divisor using the
// solver's model, and refuted ones never trap under fuzzing.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"fusion/internal/checker"
	"fusion/internal/driver"
	"fusion/internal/engines"
	"fusion/internal/interp"
	"fusion/internal/sat"
	"fusion/internal/sparse"
	"fusion/internal/ssa"
)

const src = `
fun sanitize(v: int): int {
    var r: int = v;
    if (v == 0) {
        r = 1;
    }
    return r;
}

fun handler(a: int, b: int): int {
    var raw: int = a - b;
    var risky: int = 100 / raw;          // traps when a == b

    var odd: int = a * 2 + 1;
    var safe1: int = 100 / odd;          // odd is never zero mod 2^32

    var clean: int = sanitize(a);
    var safe2: int = 100 / clean;        // sanitized in the callee

    return risky + safe1 + safe2;
}
`

func main() {
	ctx := context.Background()
	p, err := driver.Compile(ctx, driver.Source{Name: "divbyzero", Text: src},
		driver.Options{Prelude: true})
	if err != nil {
		log.Fatal(err)
	}
	g := p.Graph

	// Track every value that can reach a divisor; here the inputs a, b are
	// the sources of interest, so use a spec tracking function parameters
	// via the taint machinery: user_input stands in for them in the
	// standard spec, so instead track from the subtraction's operands by
	// marking the parameters as sources.
	spec := &sparse.Spec{
		Name: "cwe-369",
		IsSource: func(v *ssa.Value) bool {
			return v.Op == ssa.OpParam && v.Fn.Name == "handler"
		},
		SinkCalls:    map[string][]int{},
		SinkDivisors: true,
	}
	cands := sparse.NewEngine(g).RunContext(ctx, spec)
	fmt.Printf("%d candidate division flows\n", len(cands))

	eng := engines.NewFusion()
	verdicts := eng.Check(ctx, g, cands)
	rng := rand.New(rand.NewSource(1))
	for _, v := range verdicts {
		switch v.Status {
		case sat.Sat:
			fmt.Println("BUG:", checker.Describe(v.Cand))
		case sat.Unsat:
			fmt.Println("refuted (divisor can never be zero):", checker.Describe(v.Cand))
			// Dynamic cross-check: fuzzing never observes a trap at a
			// refuted division.
			opts := interp.Options{ObserveDivZero: true, Seed: 7}
			for trial := 0; trial < 200; trial++ {
				args := []interp.Value{{V: rng.Uint32()}, {V: rng.Uint32()}}
				r, err := interp.New(p.AST, opts).Run("handler", args)
				if err != nil {
					log.Fatal(err)
				}
				for _, hit := range r.Hits {
					if hit.CallPos.Line == v.Cand.Sink.Pos.Line {
						log.Fatalf("refuted division trapped at %v!", hit.CallPos)
					}
				}
			}
		}
	}
	fmt.Println("fuzzing confirmed every refutation (200 random runs each)")
}
