// Quickstart: parse a small program, run the fused null-exception checker,
// and print the verified reports — the Figure 1 example of the paper.
package main

import (
	"fmt"
	"log"

	"fusion/internal/checker"
	"fusion/internal/engines"
	"fusion/internal/lang"
	"fusion/internal/pdg"
	"fusion/internal/sat"
	"fusion/internal/sema"
	"fusion/internal/sparse"
	"fusion/internal/ssa"
	"fusion/internal/unroll"
)

// The paper's Figure 1(a): a null pointer escapes foo when bar(a) < bar(b),
// which is satisfiable — a true bug.
const src = `
fun bar(x: int): int {
    var y: int = x * 2;
    var z: int = y;
    return z;
}

fun foo(a: int, b: int) {
    var p: ptr = null;
    var c: int = bar(a);
    var d: int = bar(b);
    if (c < d) {
        deref(p);
    }
}
`

func main() {
	// 1. Front end: parse, check, normalize (unroll loops and recursion,
	//    single-exit form), build SSA, build the dependence graph.
	prog, err := lang.Parse(checker.Prelude + src)
	if err != nil {
		log.Fatal(err)
	}
	if errs := sema.Check(prog); len(errs) > 0 {
		log.Fatal(errs[0])
	}
	norm := unroll.Normalize(prog, unroll.Options{})
	sp, err := ssa.Build(norm)
	if err != nil {
		log.Fatal(err)
	}
	g := pdg.Build(sp)
	st := pdg.ComputeStats(g)
	fmt.Printf("program dependence graph: %d functions, %d vertices, %d edges\n",
		st.Functions, st.Vertices, st.Edges())

	// 2. Sparse analysis: propagate the null fact along data dependence,
	//    collecting candidate source-to-sink paths.
	spec := checker.NullDeref()
	cands := sparse.NewEngine(g).Run(spec)
	fmt.Printf("sparse propagation found %d candidate flow(s)\n", len(cands))

	// 3. Fused feasibility checking: the SMT solver works directly on the
	//    dependence graph — no path conditions are computed or cached.
	eng := engines.NewFusion()
	for _, v := range eng.Check(g, cands) {
		switch v.Status {
		case sat.Sat:
			fmt.Println("BUG:", checker.Describe(v.Cand))
			fmt.Println("  flow:", v.Cand.Path)
		case sat.Unsat:
			fmt.Println("infeasible (excluded):", checker.Describe(v.Cand))
		}
	}
}
