// Quickstart: parse a small program, run the fused null-exception checker,
// and print the verified reports — the Figure 1 example of the paper.
package main

import (
	"context"
	"fmt"
	"log"

	"fusion/internal/checker"
	"fusion/internal/driver"
	"fusion/internal/engines"
	"fusion/internal/sat"
	"fusion/internal/sparse"
)

// The paper's Figure 1(a): a null pointer escapes foo when bar(a) < bar(b),
// which is satisfiable — a true bug.
const src = `
fun bar(x: int): int {
    var y: int = x * 2;
    var z: int = y;
    return z;
}

fun foo(a: int, b: int) {
    var p: ptr = null;
    var c: int = bar(a);
    var d: int = bar(b);
    if (c < d) {
        deref(p);
    }
}
`

func main() {
	ctx := context.Background()

	// 1. Front end: one driver.Compile call runs the whole pipeline —
	//    parse, check, normalize (unroll loops and recursion, single-exit
	//    form), build SSA, build the dependence graph.
	prog, err := driver.Compile(ctx, driver.Source{Name: "quickstart", Text: src},
		driver.Options{Prelude: true})
	if err != nil {
		log.Fatal(err)
	}
	g := prog.Graph
	fmt.Printf("program dependence graph: %d functions, %d vertices, %d edges\n",
		prog.Stats.Functions, prog.Stats.Vertices, prog.Stats.Edges())

	// 2. Sparse analysis: propagate the null fact along data dependence,
	//    collecting candidate source-to-sink paths.
	spec := checker.NullDeref()
	cands := sparse.NewEngine(g).RunContext(ctx, spec)
	fmt.Printf("sparse propagation found %d candidate flow(s)\n", len(cands))

	// 3. Fused feasibility checking: the SMT solver works directly on the
	//    dependence graph — no path conditions are computed or cached.
	eng := engines.NewFusion()
	for _, v := range eng.Check(ctx, g, cands) {
		switch v.Status {
		case sat.Sat:
			fmt.Println("BUG:", checker.Describe(v.Cand))
			fmt.Println("  flow:", v.Cand.Path)
		case sat.Unsat:
			fmt.Println("infeasible (excluded):", checker.Describe(v.Cand))
		}
	}
}
