// Taintflow: the two taint clients of the paper (§4) on a small
// file-server-like program — CWE-23 (relative path traversal) and CWE-402
// (transmission of private resources). Path sensitivity separates the real
// leaks from the sanitized ones.
package main

import (
	"context"
	"fmt"
	"log"

	"fusion/internal/checker"
	"fusion/internal/driver"
	"fusion/internal/engines"
	"fusion/internal/sat"
	"fusion/internal/sparse"
)

// A toy request handler. The CWE-23 flow (gets -> unlink) only happens on
// the admin branch, which the validation below makes impossible; the
// CWE-402 flow (read_secret -> send) happens whenever logging is on — a
// real leak. The analysis must exclude the former and report the latter.
const src = `
fun validate(level: int): int {
    var ok: int = 0;
    if (level > 100) {
        ok = 1;
    }
    if (level < 50) {
        ok = ok * 2;
    }
    return ok;
}

fun handle(level: int, logging: int) {
    var request: ptr = gets();
    var secret: int = read_secret();
    var v: int = validate(level);

    // Path traversal: only reachable when v == 1 and v == 2 at once —
    // validate can never produce both, so this flow is infeasible.
    if (v == 1) {
        if (v == 2) {
            unlink(request);
        }
    }

    // Private-data leak: reachable whenever logging > 0. A real bug.
    if (logging > 0) {
        send(secret);
    }
}
`

func main() {
	ctx := context.Background()
	prog, err := driver.Compile(ctx, driver.Source{Name: "taintflow", Text: src},
		driver.Options{Prelude: true})
	if err != nil {
		log.Fatal(err)
	}
	g := prog.Graph
	eng := engines.NewFusion()

	for _, spec := range []*sparse.Spec{checker.PathTraversal(), checker.PrivateLeak()} {
		fmt.Printf("--- %s ---\n", spec.Name)
		cands := sparse.NewEngine(g).RunContext(ctx, spec)
		if len(cands) == 0 {
			fmt.Println("no candidate flows")
			continue
		}
		for _, v := range eng.Check(ctx, g, cands) {
			switch v.Status {
			case sat.Sat:
				fmt.Println("BUG:", checker.Describe(v.Cand))
			case sat.Unsat:
				fmt.Println("excluded as infeasible:", checker.Describe(v.Cand))
			}
		}
	}
}
