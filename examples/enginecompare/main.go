// Enginecompare: generate one synthetic subject and run the fused engine
// against the conventional one and the path-insensitive one, comparing
// time, retained condition memory, and report quality against the injected
// ground truth — a miniature of the paper's Tables 3 and 5.
package main

import (
	"context"
	"fmt"
	"log"
	"runtime"

	"fusion/internal/bench"
	"fusion/internal/checker"
	"fusion/internal/engines"
	"fusion/internal/progen"
)

func main() {
	ctx := context.Background()

	// The "gap" subject from Table 2, scaled down to run in seconds.
	info, err := progen.SubjectByName("gap")
	if err != nil {
		log.Fatal(err)
	}
	sub, err := bench.Compile(ctx, info, 0.05)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("subject %s: %d lines, %d functions, %d PDG vertices, %d injected bugs\n\n",
		info.Name, sub.GenLines, sub.Stats.Functions, sub.Stats.Vertices, len(sub.GT.Bugs))

	spec := checker.NullDeref()
	t := &bench.Table{
		Header: []string{"Engine", "Time", "Cond-Mem", "#Report", "#TP", "#FP"},
	}
	workers := runtime.NumCPU()
	for _, eng := range []engines.Engine{
		engines.NewFusion(),
		engines.NewPinpoint(engines.Plain),
		engines.NewInfer(),
	} {
		// Enumeration and checking fan out over every core; the verdicts
		// (and so this table) are identical to a sequential run.
		c := bench.RunWorkers(ctx, sub, spec, eng, bench.Budget{}, workers)
		t.AddRow(c.Engine,
			fmt.Sprintf("%.3fs", c.Time.Seconds()),
			fmt.Sprintf("%.2fMB", c.CondMB),
			fmt.Sprintf("%d", c.Reports),
			fmt.Sprintf("%d", c.TP),
			fmt.Sprintf("%d", c.FP))
	}
	fmt.Println(t)
	fmt.Println("The fused engine matches the conventional engine's reports at a")
	fmt.Println("fraction of the cost; the path-insensitive engine reports the")
	fmt.Println("injected infeasible bugs too (false positives).")
}
