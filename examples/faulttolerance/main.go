// Faulttolerance: demonstrate the fault-isolated pipeline. One analysis
// batch survives a forced mid-check crash (the crash becomes a structured
// unit failure on its verdict slot), and a one-decision SAT budget shows
// the degradation ladder refuting a guard at the cheaper zone/interval
// tiers instead of giving up. Both behaviors are byte-identical for any
// worker count.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"fusion/internal/checker"
	"fusion/internal/driver"
	"fusion/internal/engines"
	"fusion/internal/faultinject"
	"fusion/internal/sparse"
)

// containSrc has one feasible and one infeasible candidate.
const containSrc = `
fun f(a: int) {
    var p: ptr = null;
    if (a > 3) {
        deref(p);
    }
    var q: ptr = null;
    if (a > 10) {
        if (a < 5) {
            deref(q);
        }
    }
}
`

// budgetSrc guards the dereference with a*a == 1201²: satisfiable, but the
// solver needs genuine search decisions (neither the concrete probe nor
// unit propagation alone decides it), so a tiny per-candidate budget
// exhausts the exact tier.
const budgetSrc = `
fun g(a: int) {
    var p: ptr = null;
    if (a * a == 1442401) {
        deref(p);
    }
    var q: ptr = null;
    if (a > 10) {
        if (a < 5) {
            deref(q);
        }
    }
}
`

func compile(src string) (*driver.Program, []sparse.Candidate) {
	p, err := driver.Compile(context.Background(),
		driver.Source{Name: "example", Text: src}, driver.Options{Prelude: true})
	if err != nil {
		log.Fatal(err)
	}
	return p, sparse.NewEngine(p.Graph).Run(checker.NullDeref())
}

func main() {
	p, cands := compile(containSrc)
	fmt.Printf("%d null-deref candidates\n\n", len(cands))

	// 1. Panic containment: force a crash while checking the first
	// candidate. The batch still completes; only that slot carries a
	// structured failure with a stable stack digest.
	fmt.Println("--- forced crash in one unit ---")
	target := engines.UnitLabel(cands[0])
	if err := faultinject.ArmSpec("panic.check:" + target); err != nil {
		log.Fatal(err)
	}
	eng := engines.NewFusion()
	for _, v := range eng.Check(context.Background(), p.Graph, cands) {
		if v.Failure != nil {
			fmt.Printf("%-28s CRASHED at stage %s (digest %s)\n",
				engines.UnitLabel(v.Cand), v.Failure.Stage, v.Failure.Digest())
			continue
		}
		fmt.Printf("%-28s %s\n", engines.UnitLabel(v.Cand), v.Status)
	}
	faultinject.Reset()

	// 2. Degradation ladder: an already-expired per-candidate deadline
	// exhausts the bit-precise tier on every candidate. The contradictory
	// guard is still refuted by the cheap zone/interval tiers; the
	// satisfiable square-root guard stays an honest Unknown — each verdict
	// tagged with the tier that answered.
	fmt.Println("\n--- expired per-candidate deadline ---")
	p, cands = compile(budgetSrc)
	eng = engines.NewFusion()
	engines.SetBudget(eng, engines.Budget{Deadline: time.Nanosecond})
	for _, v := range eng.Check(context.Background(), p.Graph, cands) {
		tag := ""
		if v.Degraded {
			tag = fmt.Sprintf("  (degraded to %s tier)", v.Tier)
		}
		fmt.Printf("%-28s %s%s\n", engines.UnitLabel(v.Cand), v.Status, tag)
	}
	fmt.Println("\nThe ladder never claims Sat: a degraded verdict is either a sound")
	fmt.Println("abstract refutation or an honest Unknown.")
}
